// Package jacobi implements the paper's Jacobi application (§5.1): an
// iterative 4-point-stencil solver on an N×N single-precision grid, in
// all the paper's versions.
//
// The grid's edges are fixed at one and the interior starts at zero, so
// values propagate inward from the edges — which is why the TreadMarks
// versions move so little data (Table 2): diffs carry only the bytes
// that actually changed.
//
// Each iteration has two phases: the stencil update into a scratch
// array, and the copy back. Both loops are parallel; the shared-memory
// versions need a barrier between the phases to respect the
// anti-dependence, and one at the end of the iteration.
//
// Orientation: the paper's Fortran arrays are column-major and
// partitioned by columns, exchanging boundary columns; this Go port is
// row-major and partitioned by rows, exchanging boundary rows. The
// contiguity structure — a 2048-element single-precision boundary
// spanning two 4 KB pages — is identical.
package jacobi

import (
	"fmt"

	"repro/internal/apps/apputil"
	"repro/internal/core"
	"repro/internal/loopc"
	"repro/internal/pvm"
	"repro/internal/spf"
	"repro/internal/tmk"
	"repro/internal/xhpf"
)

// app implements core.App.
type app struct{}

// New returns the Jacobi application.
func New() core.App { return app{} }

func (app) Name() string { return "Jacobi" }

func (app) Config(scale core.Scale, procs int) core.Config {
	switch scale {
	case core.SmallScale:
		return core.Config{Procs: procs, N1: 64, Iters: 4, Warmup: 1}
	case core.MidScale:
		return core.Config{Procs: procs, N1: 1024, Iters: 20, Warmup: 1}
	default:
		return core.Config{Procs: procs, N1: 2048, Iters: 100, Warmup: 1}
	}
}

func (app) Versions() []core.Version {
	return []core.Version{core.Seq, core.SPF, core.Tmk, core.XHPF, core.PVMe, core.SPFOpt, core.SPFOld, core.TmkPush, core.SPFGen, core.XHPFGen}
}

func (a app) Run(v core.Version, cfg core.Config) (core.Result, error) {
	switch v {
	case core.Seq:
		return runSeq(cfg)
	case core.Tmk:
		return runTmk(cfg, false)
	case core.TmkPush:
		return runTmk(cfg, true)
	case core.SPF:
		return runSPF(cfg, spf.Options{}, false)
	case core.SPFOld:
		return runSPF(cfg, spf.Options{Old: true}, false)
	case core.SPFOpt:
		return runSPF(cfg, spf.Options{}, true)
	case core.XHPF:
		return runXHPF(cfg)
	case core.PVMe:
		return runPVM(cfg)
	case core.SPFGen:
		return loopc.RunSPF("Jacobi", core.SPFGen, cfg, IR(cfg))
	case core.XHPFGen:
		return loopc.RunXHPF("Jacobi", core.XHPFGen, cfg, IR(cfg))
	}
	return core.Result{}, fmt.Errorf("jacobi: unsupported version %q", v)
}

// initGrid sets edges to one and the interior to zero.
func initGrid(g []float32, n int) {
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == 0 || j == 0 || i == n-1 || j == n-1 {
				g[i*n+j] = 1
			} else {
				g[i*n+j] = 0
			}
		}
	}
}

// stencilRows computes the 4-point stencil for rows [rlo,rhi) of src
// into dst (interior columns only). dstOff is subtracted from the row
// index when storing (for private scratch arrays that hold only a band).
func stencilRows(dst, src []float32, n, rlo, rhi, dstOff int) {
	for i := rlo; i < rhi; i++ {
		d := (i - dstOff) * n
		s := i * n
		for j := 1; j < n-1; j++ {
			dst[d+j] = 0.25 * (src[s-n+j] + src[s+n+j] + src[s+j-1] + src[s+j+1])
		}
	}
}

// copyRows copies interior columns of rows [rlo,rhi) from src (offset by
// srcOff rows) into dst.
func copyRows(dst, src []float32, n, rlo, rhi, srcOff int) {
	for i := rlo; i < rhi; i++ {
		d := i * n
		s := (i - srcOff) * n
		copy(dst[d+1:d+n-1], src[s+1:s+n-1])
	}
}

func runSeq(cfg core.Config) (core.Result, error) {
	n := cfg.N1
	return apputil.RunSeq("Jacobi", cfg, func(tm *tmk.Tmk) apputil.SeqProgram {
		data := make([]float32, n*n)
		scratch := make([]float32, n*n)
		initGrid(data, n)
		initGrid(scratch, n)
		interior := (n - 2) * (n - 2)
		return apputil.SeqProgram{
			Iterate: func(k int) {
				stencilRows(scratch, data, n, 1, n-1, 0)
				tm.Advance(apputil.Cost(interior, cfg.App.JacobiUpdate))
				copyRows(data, scratch, n, 1, n-1, 0)
				tm.Advance(apputil.Cost(interior, cfg.App.JacobiCopy))
			},
			Checksum: func() float64 { return apputil.Sum64(data) },
		}
	})
}

// runTmk is the hand-coded TreadMarks version: the grid is shared, the
// scratch array is private (the hand coder knows it never crosses
// processors — the 2% SPF gap of §5.1 comes from SPF sharing it).
// push selects the §8 optimization: boundary-row diffs travel with the
// barrier (producer push) instead of being page-faulted in afterwards
// (consumer pull), halving the message count and hiding the fetch
// round trips.
func runTmk(cfg core.Config, push bool) (core.Result, error) {
	n := cfg.N1
	v := core.Tmk
	if push {
		v = core.TmkPush
	}
	return apputil.RunTmk("Jacobi", v, cfg, func(tm *tmk.Tmk) apputil.TmkProgram {
		data := tmk.Alloc[float32](tm, "data", n*n)
		lo, hi := apputil.BlockOf(tm.ID(), tm.NProcs(), n-2)
		lo, hi = lo+1, hi+1 // interior rows
		rows := hi - lo
		scratch := make([]float32, max(rows, 0)*n)
		if tm.ID() == 0 {
			w := data.Write(0, n*n)
			initGrid(w[:n*n], n)
		}
		if push && rows > 0 {
			me, last := tm.ID(), tm.NProcs()-1
			if me > 0 {
				tmk.PushOnBarrier(tm, data, lo*n, (lo+1)*n, me-1)
				tm.ExpectPushOnBarrier(me - 1)
			}
			if me < last {
				tmk.PushOnBarrier(tm, data, (hi-1)*n, hi*n, me+1)
				tm.ExpectPushOnBarrier(me + 1)
			}
		}
		tm.Barrier()
		return apputil.TmkProgram{
			Iterate: func(k int) {
				if rows > 0 {
					rd := data.Read((lo-1)*n, (hi+1)*n)
					stencilRows(scratch, rd, n, lo, hi, lo)
					tm.Advance(apputil.Cost(rows*(n-2), cfg.App.JacobiUpdate))
				}
				tm.Barrier()
				if rows > 0 {
					w := data.Write(lo*n, hi*n)
					copyRows(w, scratch, n, lo, hi, lo)
					tm.Advance(apputil.Cost(rows*(n-2), cfg.App.JacobiCopy))
				}
				tm.Barrier()
			},
			Checksum: func() float64 {
				g := data.Read(0, n*n)
				return apputil.Sum64(g[:n*n])
			},
		}
	})
}

// runSPF is the compiler-generated shared-memory version: both arrays
// live in shared memory (the SPF compiler shares every array touched by
// a parallel loop), and each phase is an encapsulated parallel loop
// dispatched through the fork-join interface. aggregated selects the §5.1
// hand optimization (data aggregation through the enhanced interface).
func runSPF(cfg core.Config, opts spf.Options, aggregated bool) (core.Result, error) {
	n := cfg.N1
	v := core.SPF
	if opts.Old {
		v = core.SPFOld
	}
	if aggregated {
		v = core.SPFOpt
	}
	return apputil.RunSPF("Jacobi", v, cfg, opts, func(rt *spf.Runtime) apputil.SPFProgram {
		tm := rt.Tmk()
		data := tmk.Alloc[float32](tm, "data", n*n)
		scratch := tmk.Alloc[float32](tm, "scratch", n*n)

		phase1 := rt.RegisterLoop(func(lo, hi, stride int, args []int64) {
			if lo >= hi {
				return
			}
			var rd, w []float32
			if aggregated {
				rd = data.ReadAggregated((lo-1)*n, (hi+1)*n)
				w = scratch.WriteAggregated(lo*n, hi*n)
			} else {
				rd = data.Read((lo-1)*n, (hi+1)*n)
				w = scratch.Write(lo*n, hi*n)
			}
			stencilRows(w, rd, n, lo, hi, 0)
			rt.Advance(apputil.Cost((hi-lo)*(n-2), cfg.App.JacobiUpdate))
		})
		phase2 := rt.RegisterLoop(func(lo, hi, stride int, args []int64) {
			if lo >= hi {
				return
			}
			var rd, w []float32
			if aggregated {
				rd = scratch.ReadAggregated(lo*n, hi*n)
				w = data.WriteAggregated(lo*n, hi*n)
			} else {
				rd = scratch.Read(lo*n, hi*n)
				w = data.Write(lo*n, hi*n)
			}
			copyRows(w, rd, n, lo, hi, 0)
			rt.Advance(apputil.Cost((hi-lo)*(n-2), cfg.App.JacobiCopy))
		})

		if rt.IsMaster() {
			w := data.Write(0, n*n)
			initGrid(w[:n*n], n)
			ws := scratch.Write(0, n*n)
			initGrid(ws[:n*n], n)
		}
		return apputil.SPFProgram{
			IterateMaster: func(k int) {
				rt.ParallelDo(phase1, 1, n-1, spf.Block)
				rt.ParallelDo(phase2, 1, n-1, spf.Block)
			},
			Checksum: func() float64 {
				g := data.Read(0, n*n)
				return apputil.Sum64(g[:n*n])
			},
		}
	})
}

// runXHPF is the compiler-generated message-passing version: BLOCK
// row distribution, halo exchange generated for the analyzable stencil,
// and runtime synchronization at each parallel-loop boundary.
func runXHPF(cfg core.Config) (core.Result, error) {
	n := cfg.N1
	return apputil.RunXHPF("Jacobi", core.XHPF, cfg, func(x *xhpf.XHPF) apputil.XHPFProgram {
		data := make([]float32, n*n)
		scratch := make([]float32, n*n)
		initGrid(data, n)
		initGrid(scratch, n)
		elo, ehi := x.Block(n * n) // element-block = row-block (n | n*n/procs)
		rlo, rhi := elo/n, ehi/n
		// Owner-computes interior rows.
		clo, chi := max(rlo, 1), min(rhi, n-1)
		return apputil.XHPFProgram{
			Iterate: func(k int) {
				xhpf.ExchangeHalo(x, data, n*n, n)
				if chi > clo {
					stencilRows(scratch, data, n, clo, chi, 0)
					x.Advance(apputil.Cost((chi-clo)*(n-2), cfg.App.JacobiUpdate))
				}
				x.LoopSync()
				if chi > clo {
					copyRows(data, scratch, n, clo, chi, 0)
					x.Advance(apputil.Cost((chi-clo)*(n-2), cfg.App.JacobiCopy))
				}
				x.LoopSync()
			},
			Checksum: func() float64 {
				gatherRows(x.PVM(), data, n, rlo, rhi)
				if x.ID() != 0 {
					return 0
				}
				return apputil.Sum64(data)
			},
		}
	})
}

// runPVM is the hand-coded message-passing version: boundary rows are
// exchanged directly — a single message carries both the data and the
// synchronization, and no communication at all separates the two phases.
func runPVM(cfg core.Config) (core.Result, error) {
	n := cfg.N1
	return apputil.RunPVM("Jacobi", core.PVMe, cfg, func(pv *pvm.PVM) apputil.PVMProgram {
		data := make([]float32, n*n)
		scratch := make([]float32, n*n)
		initGrid(data, n)
		initGrid(scratch, n)
		elo, ehi := apputil.BlockOf(pv.ID(), pv.NProcs(), n*n)
		rlo, rhi := elo/n, ehi/n
		clo, chi := max(rlo, 1), min(rhi, n-1)
		me := pv.ID()
		last := pv.NProcs() - 1
		return apputil.PVMProgram{
			Iterate: func(k int) {
				// Boundary-row exchange: send up, send down, receive.
				if me > 0 {
					pvm.Send(pv, me-1, 70, data[rlo*n:(rlo+1)*n])
				}
				if me < last {
					pvm.Send(pv, me+1, 71, data[(rhi-1)*n:rhi*n])
				}
				if me > 0 {
					pvm.Recv(pv, me-1, 71, data[(rlo-1)*n:rlo*n])
				}
				if me < last {
					pvm.Recv(pv, me+1, 70, data[rhi*n:(rhi+1)*n])
				}
				if chi > clo {
					stencilRows(scratch, data, n, clo, chi, 0)
					pv.Advance(apputil.Cost((chi-clo)*(n-2), cfg.App.JacobiUpdate))
					copyRows(data, scratch, n, clo, chi, 0)
					pv.Advance(apputil.Cost((chi-clo)*(n-2), cfg.App.JacobiCopy))
				}
			},
			Checksum: func() float64 {
				gatherRows(pv, data, n, rlo, rhi)
				if pv.ID() != 0 {
					return 0
				}
				return apputil.Sum64(data)
			},
		}
	})
}

// gatherRows collects every task's row block on task 0, untracked.
func gatherRows(pv *pvm.PVM, data []float32, n, rlo, rhi int) {
	if pv.ID() == 0 {
		for q := 1; q < pv.NProcs(); q++ {
			qlo, qhi := apputil.BlockOf(q, pv.NProcs(), n*n)
			pvm.RecvUntracked(pv, q, 90+q, data[qlo:qhi])
		}
		return
	}
	pvm.SendUntracked(pv, 0, 90+pv.ID(), data[rlo*n:rhi*n])
}
