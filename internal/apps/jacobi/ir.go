package jacobi

import (
	"repro/internal/core"
	"repro/internal/loopc"
)

// edgesOne is initGrid in IR form: edges one, interior zero.
func edgesOne(i, j, n int) float32 {
	if i == 0 || j == 0 || i == n-1 || j == n-1 {
		return 1
	}
	return 0
}

// IR describes Jacobi as a loopc loop nest: the 4-point stencil into
// the scratch array and the copy back, both over the interior. The
// expression tree's association matches stencilRows exactly, so the
// compiled versions are bit-identical to the hand-coded ones.
func IR(cfg core.Config) *loopc.Program {
	ref := func(arr string, ro, co int) loopc.Expr {
		return loopc.Ref(loopc.At(arr, "i", ro, "j", co))
	}
	stencil := loopc.Mul(loopc.Lit(0.25),
		loopc.Add(loopc.Add(loopc.Add(ref("data", -1, 0), ref("data", 1, 0)), ref("data", 0, -1)), ref("data", 0, 1)))
	interior := loopc.Loop{Lo: loopc.Ext(0, 1), Hi: loopc.Ext(1, -1)}
	row, col := interior, interior
	row.Var, col.Var = "i", "j"
	return &loopc.Program{
		Name: "jacobi",
		Arrays: []loopc.ArrayDecl{
			{Name: "data", Init: edgesOne},
			{Name: "scratch", Init: edgesOne},
		},
		Nests: []*loopc.Nest{
			{
				Name: "stencil", Row: row, Col: col,
				Stmts:     []*loopc.Stmt{{LHS: loopc.At("scratch", "i", 0, "j", 0), RHS: stencil}},
				PointCost: cfg.App.JacobiUpdate,
			},
			{
				Name: "copyback", Row: row, Col: col,
				Stmts:     []*loopc.Stmt{{LHS: loopc.At("data", "i", 0, "j", 0), RHS: ref("scratch", 0, 0)}},
				PointCost: cfg.App.JacobiCopy,
			},
		},
		Result: "data",
	}
}
