package jacobi

import (
	"testing"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/stats"
)

func cfgSmall(procs int) core.Config {
	c := New().Config(core.SmallScale, procs)
	c.Costs = model.SP2()
	c.App = model.DefaultAppCosts()
	return c
}

func TestAllVersionsMatchSequential(t *testing.T) {
	cfg := cfgSmall(4)
	seq, err := New().Run(core.Seq, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if seq.Checksum == 0 {
		t.Fatal("sequential checksum is zero; grid not evolving")
	}
	for _, v := range []core.Version{core.Tmk, core.SPF, core.SPFOpt, core.SPFOld, core.XHPF, core.PVMe} {
		r, err := New().Run(v, cfg)
		if err != nil {
			t.Fatalf("%s: %v", v, err)
		}
		if r.Checksum != seq.Checksum {
			t.Errorf("%s checksum = %v, want %v (bitwise)", v, r.Checksum, seq.Checksum)
		}
	}
}

func TestRaggedPartition(t *testing.T) {
	// 3 procs on a 64-grid: 62 interior rows split 21/21/20.
	cfg := cfgSmall(3)
	seq, _ := New().Run(core.Seq, cfg)
	for _, v := range []core.Version{core.Tmk, core.SPF} {
		r, err := New().Run(v, cfg)
		if err != nil {
			t.Fatalf("%s: %v", v, err)
		}
		if r.Checksum != seq.Checksum {
			t.Errorf("%s ragged checksum = %v, want %v", v, r.Checksum, seq.Checksum)
		}
	}
}

// TestPVMeMessageFormula: the hand-coded message-passing version sends
// exactly 2*(procs-1) boundary rows per iteration and nothing else
// (paper: 1400 messages for 100 iterations on 8 processors).
func TestPVMeMessageFormula(t *testing.T) {
	cfg := cfgSmall(8)
	cfg.Iters = 5
	r, err := New().Run(core.PVMe, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := int64(cfg.Iters * 2 * (cfg.Procs - 1))
	if got := r.Stats.TotalMsgs(); got != want {
		t.Errorf("PVMe msgs = %d, want %d", got, want)
	}
}

// TestTmkMessageStructure: per iteration the hand-coded TreadMarks
// version needs 2 barriers (2*2*(n-1) msgs) plus the boundary-row
// faults: each interior processor faults 2 neighbor rows, edge
// processors 1. At the small size a row is sub-page so false sharing
// makes page counts size-dependent; we check the barrier component
// exactly and the fault component within structural bounds.
func TestTmkMessageStructure(t *testing.T) {
	cfg := cfgSmall(8)
	cfg.Iters = 6
	r, err := New().Run(core.Tmk, cfg)
	if err != nil {
		t.Fatal(err)
	}
	wantBarrier := int64(cfg.Iters * 2 * 2 * (cfg.Procs - 1))
	if got := r.Stats.MsgsOf(stats.KindBarrier); got != wantBarrier {
		t.Errorf("barrier msgs = %d, want %d", got, wantBarrier)
	}
	faults := r.Stats.MsgsOf(stats.KindDiffReq)
	if faults == 0 {
		t.Error("expected boundary-row faults")
	}
	// At most 2 pages per boundary per direction per iteration.
	maxFaults := int64(cfg.Iters * 2 * 2 * (cfg.Procs - 1))
	if faults > maxFaults {
		t.Errorf("fault requests = %d, want <= %d", faults, maxFaults)
	}
}

// TestAggregationReducesMessages: the §5.1 hand optimization must lower
// the message count without changing the result. The effect needs a
// boundary row spanning multiple pages of the same writer (paper: a
// 2048-element boundary column covers two pages, so the unaggregated
// version takes two faults and four messages where one request
// suffices), so this test needs N=2048 (8 KB rows = two pages).
func TestAggregationReducesMessages(t *testing.T) {
	if testing.Short() {
		t.Skip("needs 2048-wide rows so a boundary spans two pages")
	}
	cfg := cfgSmall(8)
	cfg.N1 = 2048
	cfg.Iters = 2
	base, err := New().Run(core.SPF, cfg)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := New().Run(core.SPFOpt, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if opt.Stats.TotalMsgs() >= base.Stats.TotalMsgs() {
		t.Errorf("aggregated msgs = %d, want < %d", opt.Stats.TotalMsgs(), base.Stats.TotalMsgs())
	}
	if opt.Checksum != base.Checksum {
		t.Errorf("aggregation changed the result: %v vs %v", opt.Checksum, base.Checksum)
	}
}

// TestOldInterfaceCostsMore: §2.3's ablation at the application level.
func TestOldInterfaceCostsMore(t *testing.T) {
	cfg := cfgSmall(8)
	improved, err := New().Run(core.SPF, cfg)
	if err != nil {
		t.Fatal(err)
	}
	old, err := New().Run(core.SPFOld, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if old.Stats.TotalMsgs() <= improved.Stats.TotalMsgs() {
		t.Errorf("old interface msgs = %d, want > %d", old.Stats.TotalMsgs(), improved.Stats.TotalMsgs())
	}
	if old.Time <= improved.Time {
		t.Errorf("old interface time = %v, want > %v", old.Time, improved.Time)
	}
}

// TestDSMDataVolumeTiny: the signature Table 2 effect — the TreadMarks
// versions move far less data than message passing because diffs carry
// only changed bytes and Jacobi's interior stays zero for many
// iterations. The effect needs the big-grid regime where boundary rows
// are mostly unchanged (at toy sizes the write-notice overhead and the
// propagation front dominate).
func TestDSMDataVolumeTiny(t *testing.T) {
	cfg := cfgSmall(8)
	cfg.N1 = 512
	cfg.Iters = 10
	tmkR, err := New().Run(core.Tmk, cfg)
	if err != nil {
		t.Fatal(err)
	}
	pvmR, err := New().Run(core.PVMe, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if tmkR.Stats.TotalBytes() >= pvmR.Stats.TotalBytes() {
		t.Errorf("Tmk bytes = %d, want < PVMe bytes = %d", tmkR.Stats.TotalBytes(), pvmR.Stats.TotalBytes())
	}
}

// TestSpeedupOrdering: at paper scale the paper's ranking is
// PVMe > XHPF > Tmk > SPF. Run a reduced-but-meaningful size and check
// the ordering of the two ends and the DSM pair.
func TestSpeedupOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("ordering test uses a bigger grid")
	}
	cfg := cfgSmall(8)
	cfg.N1 = 512
	cfg.Iters = 10
	seq, err := New().Run(core.Seq, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sp := map[core.Version]float64{}
	for _, v := range []core.Version{core.SPF, core.Tmk, core.PVMe, core.XHPF} {
		r, err := New().Run(v, cfg)
		if err != nil {
			t.Fatal(err)
		}
		sp[v] = r.Speedup(seq.Time)
	}
	t.Logf("speedups: %+v", sp)
	if !(sp[core.PVMe] > sp[core.Tmk] && sp[core.Tmk] > sp[core.SPF]) {
		t.Errorf("ordering violated: PVMe=%.2f Tmk=%.2f SPF=%.2f", sp[core.PVMe], sp[core.Tmk], sp[core.SPF])
	}
	if sp[core.XHPF] <= sp[core.SPF] {
		t.Errorf("XHPF=%.2f should beat SPF=%.2f on a regular app", sp[core.XHPF], sp[core.SPF])
	}
}

func TestSequentialDeterministic(t *testing.T) {
	cfg := cfgSmall(1)
	a, _ := New().Run(core.Seq, cfg)
	b, _ := New().Run(core.Seq, cfg)
	if a.Checksum != b.Checksum || a.Time != b.Time {
		t.Errorf("sequential run not deterministic: %v/%v vs %v/%v", a.Checksum, a.Time, b.Checksum, b.Time)
	}
}

// TestPushOptimization: §8's push — boundary diffs travel with the
// barrier instead of being pulled by page faults afterwards. Same
// result, no diff requests, fewer messages, less time.
func TestPushOptimization(t *testing.T) {
	// Needs a geometry where only the two adjacent processors write a
	// boundary page (at 64x64, 16 rows share each page and a third
	// writer without a push pairing still faults).
	cfg := cfgSmall(8)
	cfg.N1, cfg.Iters = 256, 3
	base, err := New().Run(core.Tmk, cfg)
	if err != nil {
		t.Fatal(err)
	}
	push, err := New().Run(core.TmkPush, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if push.Checksum != base.Checksum {
		t.Errorf("push changed the result: %v vs %v", push.Checksum, base.Checksum)
	}
	if got := push.Stats.MsgsOf(stats.KindDiffReq); got != 0 {
		t.Errorf("push version still took %d diff requests", got)
	}
	// Pushes fire at every barrier, replacing each request/reply fault
	// pair one-for-one, so counts tie; the §8 win is the hidden fetch
	// latency (asserted below via time).
	if push.Stats.TotalMsgs() > base.Stats.TotalMsgs() {
		t.Errorf("push msgs = %d, want <= %d", push.Stats.TotalMsgs(), base.Stats.TotalMsgs())
	}
	if push.Time >= base.Time {
		t.Errorf("push time = %v, want < %v", push.Time, base.Time)
	}
}
