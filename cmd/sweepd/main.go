// Command sweepd is the sweep-fabric worker daemon: it serves leased
// spec ranges to a dsmrun -fabric coordinator over HTTP, executing
// them through the internal/exp engine (spec-keyed result cache
// intact) and streaming back stamped JSON-lines records.
//
//	sweepd -listen :9190 [-workers N] [-store DIR [-store-max-bytes N]]
//
// Endpoints:
//
//	GET  /healthz   — registration handshake: {"ok":true,"schema_version":N}.
//	                  Coordinators refuse workers whose schema_version
//	                  differs from their own build's (satellite: mismatched
//	                  builds are rejected, never silently merged).
//	POST /run       — one lease: {"schema_version":N,"lease":ID,"keys":[...]}
//	                  answered with one stamped record per key, in key
//	                  order, as NDJSON. Malformed requests get 400.
//	/progress       — JSON snapshot of the worker's run progress (totals
//	                  grow lease by lease).
//	/metrics        — Prometheus text: dsm_fabric_worker_* lease/record
//	                  counters plus the first engine's host telemetry.
//	/debug/pprof/*  — live profiling of the worker process.
//
// -workers bounds the engine's host worker pool (0: all cores).
//
// -store DIR backs the worker with the persistent result store (see
// dsmrun -store): leased specs whose record is already on disk stream
// back without executing, and executed records are written back, so a
// warm worker answers a repeated sweep from disk. -store-max-bytes
// bounds the directory (LRU eviction; 0: unbounded).
//
// Shutdown: on SIGINT or SIGTERM the daemon drains — new leases (and
// health checks) answer 503 so the coordinator reassigns around it,
// the in-flight lease streams to completion, and the store is flushed
// and closed — then exits 0. A second signal, or a drain exceeding
// -drain-timeout, exits immediately (the store is durable frame by
// frame, so at worst the interrupted lease's tail is recomputed next
// time).
//
// Fault injection (CI only):
//
//	sweepd -listen :9191 -kill-after 3
//
// -kill-after N exits the process (status 3) after streaming N
// records, mid-lease and mid-stream — the crash the fabric-smoke job
// uses to prove lease reassignment keeps merged output byte-identical.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/exp"
	"repro/internal/fabric"
	"repro/internal/metrics"
	"repro/internal/store"
)

func main() {
	listen := flag.String("listen", ":9190", "address to serve the worker endpoints on")
	workers := flag.Int("workers", 0, "engine worker pool size (0: all host cores)")
	storeDir := flag.String("store", "", "persistent result store directory: serve leased specs from disk (and write executed records back)")
	storeMax := flag.Int64("store-max-bytes", 0, "evict the -store directory down to this many bytes, LRU first (0: unbounded)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "graceful-shutdown bound on finishing the in-flight lease")
	killAfter := flag.Int64("kill-after", 0, "fault injection: exit(3) after streaming this many records (0: never)")
	flag.Parse()

	reg := metrics.NewRegistry()
	w := fabric.NewWorker(reg)
	w.Workers = *workers
	w.Logf = func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "sweepd: "+format+"\n", args...)
	}
	if *storeDir != "" {
		st, err := store.Open(*storeDir, exp.StoreOptions(*storeMax))
		if err != nil {
			fmt.Fprintln(os.Stderr, "sweepd:", err)
			os.Exit(1)
		}
		w.Store = st // Drain closes it
	}
	if *killAfter > 0 {
		w.KillAfterRecords = *killAfter
		// A whole-process kill, not the in-process default: the stream
		// cuts off exactly where a crashed machine would cut it off.
		w.Kill = func() { os.Exit(3) }
	}

	mux := metrics.NewMux(reg, w.Routes())
	_, addr, err := metrics.StartServer(*listen, mux)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sweepd:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "sweepd: serving /healthz, /run, /progress and /metrics on http://%s\n", addr)

	sig := make(chan os.Signal, 2)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	s := <-sig
	fmt.Fprintf(os.Stderr, "sweepd: %s: draining (in-flight lease finishes; new leases answer 503)\n", s)
	go func() {
		s := <-sig
		fmt.Fprintf(os.Stderr, "sweepd: second %s: exiting immediately\n", s)
		os.Exit(1)
	}()
	if err := w.Drain(*drainTimeout); err != nil {
		fmt.Fprintln(os.Stderr, "sweepd:", err)
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "sweepd: drained; store flushed and closed")
}
