// Command sweepd is the sweep-fabric worker daemon: it serves leased
// spec ranges to a dsmrun -fabric coordinator over HTTP, executing
// them through the internal/exp engine (spec-keyed result cache
// intact) and streaming back stamped JSON-lines records.
//
//	sweepd -listen :9190 [-workers N]
//
// Endpoints:
//
//	GET  /healthz   — registration handshake: {"ok":true,"schema_version":N}.
//	                  Coordinators refuse workers whose schema_version
//	                  differs from their own build's (satellite: mismatched
//	                  builds are rejected, never silently merged).
//	POST /run       — one lease: {"schema_version":N,"lease":ID,"keys":[...]}
//	                  answered with one stamped record per key, in key
//	                  order, as NDJSON. Malformed requests get 400.
//	/progress       — JSON snapshot of the worker's run progress (totals
//	                  grow lease by lease).
//	/metrics        — Prometheus text: dsm_fabric_worker_* lease/record
//	                  counters plus the first engine's host telemetry.
//	/debug/pprof/*  — live profiling of the worker process.
//
// -workers bounds the engine's host worker pool (0: all cores). The
// daemon runs until killed; coherent shutdown is the coordinator's
// problem — its lease table reassigns anything a dead worker held.
//
// Fault injection (CI only):
//
//	sweepd -listen :9191 -kill-after 3
//
// -kill-after N exits the process (status 3) after streaming N
// records, mid-lease and mid-stream — the crash the fabric-smoke job
// uses to prove lease reassignment keeps merged output byte-identical.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/fabric"
	"repro/internal/metrics"
)

func main() {
	listen := flag.String("listen", ":9190", "address to serve the worker endpoints on")
	workers := flag.Int("workers", 0, "engine worker pool size (0: all host cores)")
	killAfter := flag.Int64("kill-after", 0, "fault injection: exit(3) after streaming this many records (0: never)")
	flag.Parse()

	reg := metrics.NewRegistry()
	w := fabric.NewWorker(reg)
	w.Workers = *workers
	w.Logf = func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "sweepd: "+format+"\n", args...)
	}
	if *killAfter > 0 {
		w.KillAfterRecords = *killAfter
		// A whole-process kill, not the in-process default: the stream
		// cuts off exactly where a crashed machine would cut it off.
		w.Kill = func() { os.Exit(3) }
	}

	mux := metrics.NewMux(reg, w.Routes())
	_, addr, err := metrics.StartServer(*listen, mux)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sweepd:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "sweepd: serving /healthz, /run, /progress and /metrics on http://%s\n", addr)
	select {} // serve until killed
}
