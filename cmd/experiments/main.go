// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments [-procs 8] [-scale paper|mid|small] [-only table1,figure1,...]
//
// With no -only flag every experiment runs (Table 1, Figures 1-2,
// Tables 2-3, the §5 hand optimizations, and the §2.3 interface
// ablation). Paper scale matches Table 1's data sets and takes a few
// minutes; mid scale preserves the page-granularity regime at a fraction
// of the time.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/harness"
)

func main() {
	procs := flag.Int("procs", 8, "number of simulated processors")
	scale := flag.String("scale", "paper", "problem scale: paper, mid, or small")
	only := flag.String("only", "", "comma-separated experiments (table1,figure1,table2,figure2,table3,handopt,interface)")
	flag.Parse()

	r := harness.NewRunner(*procs, harness.Scale(*scale))
	run := func(name string, f func(w *os.File, r *harness.Runner) error) {
		if err := f(os.Stdout, r); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println()
	}
	table := map[string]func(w *os.File, r *harness.Runner) error{
		"table1":    func(w *os.File, r *harness.Runner) error { return harness.Table1(w, r) },
		"figure1":   func(w *os.File, r *harness.Runner) error { return harness.Figure1(w, r) },
		"table2":    func(w *os.File, r *harness.Runner) error { return harness.Table2(w, r) },
		"figure2":   func(w *os.File, r *harness.Runner) error { return harness.Figure2(w, r) },
		"table3":    func(w *os.File, r *harness.Runner) error { return harness.Table3(w, r) },
		"handopt":   func(w *os.File, r *harness.Runner) error { return harness.HandOpt(w, r) },
		"interface": func(w *os.File, r *harness.Runner) error { return harness.Interface(w, r) },
		"scalability": func(w *os.File, r *harness.Runner) error {
			return harness.Scalability(w, r, "Jacobi", []int{2, 4, 8})
		},
	}
	order := []string{"table1", "figure1", "table2", "figure2", "table3", "handopt", "interface"}
	want := order
	if *only != "" {
		want = strings.Split(*only, ",")
	}
	for _, name := range want {
		f, ok := table[strings.TrimSpace(name)]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q (have %s, scalability)\n", name, strings.Join(order, ", "))
			os.Exit(2)
		}
		run(name, f)
	}
}
