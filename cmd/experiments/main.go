// Command experiments regenerates the paper's tables and figures. It
// is a thin rendering client of the internal/exp sweep engine: each
// experiment declares its (application × version × procs × protocol)
// grid as a spec list, the engine executes the grid concurrently
// across host cores (bounded by -workers) behind a shared result
// cache, and the tables are formatted from the engine's output.
//
// Usage:
//
//	experiments [-procs 8] [-scale paper|mid|small] [-protocol lrc|hlrc] [-workers N] [-only table1,figure1,...]
//
// With no -only flag every experiment runs (Table 1, Figures 1-2,
// Tables 2-3, the §5 hand optimizations, and the §2.3 interface
// ablation). Paper scale matches Table 1's data sets and takes a few
// minutes; mid scale preserves the page-granularity regime at a fraction
// of the time. The protocols experiment (-only protocols) compares the
// homeless TreadMarks LRC against the home-based LRC on every
// application at 1-8 nodes; -protocol selects the coherence protocol the
// other experiments run under (default: lrc, the paper's). The compiler
// experiment (-only compiler) runs the internal/loopc-generated
// spf-gen/xhpf-gen versions next to their hand-coded counterparts.
//
// The migration experiment (-only migration) sweeps the home-based
// protocol's home-placement policies (static, firsttouch, adaptive) at
// 1-8 nodes for MGS, Jacobi and Shallow, reporting flush traffic and
// migration counts; -homepolicy selects the policy every *other*
// experiment runs under when combined with -protocol hlrc.
//
// The gendiff experiment (-only gendiff) runs deterministic generated
// loop-nest programs (internal/loopc/gen) through every compiled
// backend, protocol and home policy, checking each run bitwise against
// the partition-aware oracle and for repeat determinism. Any divergence
// fails the experiment; dsmrun -gen <seed> replays and minimizes it.
//
// The breakdown experiment (-only breakdown) runs every figure version
// of every application with observability on and prints the per-node
// virtual-time attribution — compute vs page-fault stall vs barrier,
// lock and message waits vs contention queueing — the event-trace
// counterpart of the paper's §5/§6 overhead analysis. It runs on its
// own observing engine, so the other experiments' cache stays
// trace-free.
//
// The contention experiment (-only contention) sweeps the serial-NIC /
// backplane contention model at 1-8 nodes for Jacobi, IGrid and NBF
// under both protocols and all three runtimes. Independently,
// -contention N makes *every* experiment run on the contended SP/2:
// N > 0 bounds the backplane to N concurrent full-rate transfers,
// N = -1 serializes the NICs over an ideal backplane, 0 (default) keeps
// the infinite-capacity interconnect.
//
// -metrics-addr serves the shared engine's host-side telemetry
// (/metrics in Prometheus text format, /debug/pprof/*) over HTTP while
// the experiments run, and -metrics-dump writes a final JSON snapshot
// of the registry; see cmd/dsmrun for the metric families. Telemetry
// never changes experiment output.
//
// -store DIR backs the shared engine with the persistent result store
// (see dsmrun -store): grid points already on disk render without
// re-simulating, and fresh runs are written back, so re-rendering
// tables — or running further experiments over the same grid — costs
// only the disk reads. Tables are byte-identical served or executed;
// the store reads as empty under a build whose record schema version
// differs. -store-max-bytes bounds the directory (LRU eviction; 0:
// unbounded).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/exp"
	"repro/internal/harness"
	"repro/internal/metrics"
	"repro/internal/proto"
	"repro/internal/store"
)

func main() {
	procs := flag.Int("procs", 8, "number of simulated processors")
	scale := flag.String("scale", "paper", "problem scale: paper, mid, or small")
	protocol := flag.String("protocol", "", "DSM coherence protocol: lrc (default) or hlrc")
	homepolicy := flag.String("homepolicy", "", "hlrc home-placement policy: static (default), firsttouch, or adaptive")
	contention := flag.Int("contention", 0, "network contention: 0 off, -1 serial NICs only, N>0 serial NICs + N-way backplane")
	workers := flag.Int("workers", 0, "sweep worker pool size (0: all host cores)")
	only := flag.String("only", "", "comma-separated experiments (table1,figure1,table2,figure2,table3,handopt,interface,protocols,compiler,contention,migration,gendiff,breakdown)")
	storeDir := flag.String("store", "", "persistent result store directory: table records are served from disk across runs (and written back)")
	storeMax := flag.Int64("store-max-bytes", 0, "evict the -store directory down to this many bytes, LRU first (0: unbounded)")
	metricsAddr := flag.String("metrics-addr", "", "serve host-side telemetry (/metrics, /debug/pprof/*) on this address while the experiments run")
	metricsDump := flag.String("metrics-dump", "", "write a final JSON snapshot of the metrics registry to this file")
	flag.Parse()

	pname, err := proto.Parse(*protocol)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	polname, err := proto.ParsePolicy(*homepolicy)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	r := harness.NewRunner(*procs, harness.Scale(*scale))
	r.Protocol = pname
	if polname != proto.StaticPolicy {
		r.HomePolicy = polname
	}
	r.Workers = *workers
	if *contention < -1 {
		fmt.Fprintf(os.Stderr, "experiments: invalid -contention %d (want 0, -1, or a positive backplane bound)\n", *contention)
		os.Exit(2)
	}
	r.Costs = r.Costs.WithContention(*contention)
	if *metricsAddr != "" || *metricsDump != "" {
		r.Metrics = metrics.NewRegistry()
	}
	if *storeDir != "" {
		st, err := store.Open(*storeDir, exp.StoreOptions(*storeMax))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer st.Close()
		r.Store = st
	}
	if *metricsAddr != "" {
		_, addr, err := metrics.StartServer(*metricsAddr, metrics.NewMux(r.Metrics, nil))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "experiments: serving /metrics and /debug/pprof/ on http://%s\n", addr)
	}
	if *metricsDump != "" {
		defer func() {
			f, err := os.Create(*metricsDump)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			enc := json.NewEncoder(f)
			enc.SetIndent("", "  ")
			if err := enc.Encode(r.Metrics.Snapshot()); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			if err := f.Close(); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}()
	}
	run := func(name string, f func(w *os.File, r *harness.Runner) error) {
		if err := f(os.Stdout, r); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println()
	}
	table := map[string]func(w *os.File, r *harness.Runner) error{
		"table1":    func(w *os.File, r *harness.Runner) error { return harness.Table1(w, r) },
		"figure1":   func(w *os.File, r *harness.Runner) error { return harness.Figure1(w, r) },
		"table2":    func(w *os.File, r *harness.Runner) error { return harness.Table2(w, r) },
		"figure2":   func(w *os.File, r *harness.Runner) error { return harness.Figure2(w, r) },
		"table3":    func(w *os.File, r *harness.Runner) error { return harness.Table3(w, r) },
		"handopt":   func(w *os.File, r *harness.Runner) error { return harness.HandOpt(w, r) },
		"interface": func(w *os.File, r *harness.Runner) error { return harness.Interface(w, r) },
		"scalability": func(w *os.File, r *harness.Runner) error {
			return harness.Scalability(w, r, "Jacobi", []int{2, 4, 8})
		},
		"protocols":  func(w *os.File, r *harness.Runner) error { return harness.Protocols(w, r) },
		"compiler":   func(w *os.File, r *harness.Runner) error { return harness.Compiler(w, r) },
		"contention": func(w *os.File, r *harness.Runner) error { return harness.Contention(w, r) },
		"migration":  func(w *os.File, r *harness.Runner) error { return harness.Migration(w, r) },
		"gendiff":    func(w *os.File, r *harness.Runner) error { return harness.GenDiff(w, r) },
		"breakdown": func(w *os.File, r *harness.Runner) error {
			// A separate observing runner: traces are per-run state the
			// shared cache must not carry for the other experiments. Its
			// Metrics stays nil — the registry's func-backed families
			// already belong to the main runner's engine.
			or := harness.NewRunner(r.Procs, r.Scale)
			or.Protocol, or.HomePolicy = r.Protocol, r.HomePolicy
			or.Costs, or.App, or.Workers = r.Costs, r.App, r.Workers
			or.Observe = true
			return harness.Breakdown(w, or)
		},
	}
	order := []string{"table1", "figure1", "table2", "figure2", "table3", "handopt", "interface"}
	want := order
	if *only != "" {
		want = strings.Split(*only, ",")
	}
	for _, name := range want {
		f, ok := table[strings.TrimSpace(name)]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q (have %s, scalability, protocols, compiler, contention, migration, gendiff, breakdown)\n", name, strings.Join(order, ", "))
			os.Exit(2)
		}
		run(name, f)
	}
}
