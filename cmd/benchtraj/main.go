// Command benchtraj maintains the repository's performance trajectory:
// a pinned set of golden benchmark runs whose results are committed as
// BENCH_<n>.json (JSON-lines of internal/exp records, the sweep
// schema) and re-checked by CI on every change.
//
// The simulator is deterministic — virtual times, message counts and
// byte volumes are a pure function of the code — so the trajectory can
// be gated *exactly*: any drift in any golden number is a behavioural
// change that must be either a bug or an intentional recalibration
// (regenerate the file and commit it with the change that explains it).
//
//	benchtraj -out BENCH_6.json          # (re)build the trajectory file
//	benchtraj -gate BENCH_6.json         # re-run and compare, exit 1 on drift
//	benchtraj -diff BENCH_5.json BENCH_6.json   # compare two files, no runs
//
// -tol relaxes the virtual-time comparison to a relative tolerance
// (e.g. -tol 0.01 for 1%); message counts, byte volumes and checksums
// always compare exactly. The golden set runs at small scale with
// observability on, so every record also carries the bd_* time
// attribution; attribution drift with unchanged time is gated too — it
// means the breakdown, not the simulation, changed.
//
// Trajectory files built with -out additionally record each run's host
// wall time as host_ns. It is informational only — host time depends
// on the machine and its load — so -gate and -diff never compare it;
// it exists to let successive BENCH_<n>.json files tell the story of
// the simulator's own performance alongside the virtual results.
//
//	benchtraj -gate BENCH_6.json -fabric host1:9190,host2:9190
//
// -fabric runs the -gate golden set through the distributed sweep
// fabric (comma-separated worker addresses, as dsmrun -fabric takes)
// instead of the local engine. Because the gate is exact, this is the
// fabric's cross-machine acceptance check: any worker whose simulation
// differs from the coordinator's build — wrong binary, wrong
// calibration, broken hardware — drifts the trajectory and fails the
// gate.
//
// -store DIR backs the gate's engine with the persistent result store
// (see dsmrun -store): golden runs already on disk are compared
// without re-simulating, so a warm `benchtraj -gate` costs disk reads.
// The records served are the exact bytes a cold run produces — the
// gate's comparisons see no difference — except host_ns, which is 0
// for served runs (it is informational and never compared). The store
// reads as empty under a build with a different record schema version,
// so a schema change always re-executes.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"math"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/exp"
	"repro/internal/fabric"
	"repro/internal/proto"
	"repro/internal/store"
)

// goldenSpecs is the pinned trajectory grid: small-scale runs covering
// every runtime (DSM hand-coded and compiled, message passing
// hand-coded and compiled), both coherence protocols, an adaptive
// home-migration case, a contended-network case and a lock-heavy
// application. Editing this set renumbers the trajectory: build a new
// BENCH_<n>.json rather than regenerating the old one.
func goldenSpecs() []exp.Spec {
	type row struct {
		app        string
		version    core.Version
		procs      int
		protocol   string
		homepolicy string
		contention int
	}
	rows := []row{
		// The four ways to run a regular application (paper Figures 1/2).
		{app: "Jacobi", version: core.Tmk, procs: 4},
		{app: "Jacobi", version: core.SPF, procs: 4},
		{app: "Jacobi", version: core.XHPF, procs: 4},
		{app: "Jacobi", version: core.PVMe, procs: 4},
		// Home-based LRC next to the homeless default.
		{app: "Jacobi", version: core.Tmk, procs: 4, protocol: "hlrc"},
		{app: "Shallow", version: core.Tmk, procs: 4, protocol: "hlrc"},
		// Adaptive home migration (the PR 5 win on MGS).
		{app: "MGS", version: core.Tmk, procs: 4, protocol: "hlrc", homepolicy: "adaptive"},
		{app: "MGS", version: core.Tmk, procs: 4, protocol: "hlrc"},
		// The §5 hand optimizations.
		{app: "MGS", version: core.TmkOpt, procs: 4},
		{app: "3-D FFT", version: core.SPFOpt, procs: 4},
		// Lock-heavy and irregular behaviour.
		{app: "3-D FFT", version: core.Tmk, procs: 4},
		{app: "IGrid", version: core.Tmk, procs: 2},
		{app: "IGrid", version: core.XHPF, procs: 2},
		{app: "NBF", version: core.Tmk, procs: 4},
		// Contended network (serial NICs, 2-way backplane).
		{app: "Jacobi", version: core.Tmk, procs: 4, contention: 2},
		{app: "NBF", version: core.XHPF, procs: 4, contention: 2},
		// The loopc-compiled kernel.
		{app: "RB-SOR", version: core.XHPFGen, procs: 4},
		// Scaling spot-check.
		{app: "Jacobi", version: core.Tmk, procs: 8},
	}
	specs := make([]exp.Spec, len(rows))
	for i, r := range rows {
		pname, err := proto.Parse(r.protocol)
		if err != nil {
			panic(err) // the golden set is a compile-time constant
		}
		specs[i] = exp.Spec{
			App: r.app, Version: r.version, Procs: r.procs,
			Scale: core.SmallScale, Protocol: pname,
			Contention: r.contention,
			HomePolicy: proto.PolicyName(r.homepolicy),
		}
		specs[i] = specs[i].Normalize()
	}
	return specs
}

func main() {
	out := flag.String("out", "", "write the trajectory to this file (JSON-lines of exp records)")
	gate := flag.String("gate", "", "re-run the golden set and compare against this trajectory file")
	tol := flag.Float64("tol", 0, "relative virtual-time tolerance for -gate/-diff (0: exact)")
	workers := flag.Int("workers", 0, "worker pool size (0: all host cores)")
	fabricAddrs := flag.String("fabric", "", "comma-separated fabric worker addresses: run the -gate golden set through the distributed fabric")
	storeDir := flag.String("store", "", "persistent result store directory: golden runs already on disk are served without executing")
	storeMax := flag.Int64("store-max-bytes", 0, "evict the -store directory down to this many bytes, LRU first (0: unbounded)")
	flag.Parse()

	var st *store.Store
	if *storeDir != "" {
		var err error
		if st, err = store.Open(*storeDir, exp.StoreOptions(*storeMax)); err != nil {
			fatal(err)
		}
		defer st.Close()
	}

	diffArgs := flag.Args()
	switch {
	case *out != "" && *gate == "" && len(diffArgs) == 0:
		if err := build(*out, *workers, st); err != nil {
			fatal(err)
		}
	case *gate != "" && *out == "" && len(diffArgs) == 0:
		drift, err := gateRun(*gate, *tol, *workers, *fabricAddrs, st)
		if err != nil {
			fatal(err)
		}
		if drift > 0 {
			fmt.Fprintf(os.Stderr, "benchtraj: %d golden runs drifted\n", drift)
			os.Exit(1)
		}
		fmt.Println("benchtraj: trajectory holds")
	case len(diffArgs) == 2 && *out == "" && *gate == "":
		drift, err := diffFiles(diffArgs[0], diffArgs[1], *tol)
		if err != nil {
			fatal(err)
		}
		if drift > 0 {
			fmt.Fprintf(os.Stderr, "benchtraj: %d records drifted between %s and %s\n", drift, diffArgs[0], diffArgs[1])
			os.Exit(1)
		}
		fmt.Println("benchtraj: trajectories agree")
	default:
		fmt.Fprintln(os.Stderr, "usage: benchtraj -out FILE | benchtraj -gate FILE [-tol F] | benchtraj [-tol F] OLD NEW")
		os.Exit(2)
	}
}

// engine builds the observing golden-run engine, backed by the
// persistent store when one was opened.
func engine(workers int, st *store.Store) *exp.Engine {
	e := exp.New()
	e.Workers = workers
	e.JoinSpeedup = true
	e.Observe = true
	e.Store = st
	return e
}

// build runs the golden set and writes the trajectory file, attaching
// the informational host_ns to every record (the one writer that sets
// it; the engine's Stream path never does, keeping sweep output
// byte-identical across hosts).
func build(path string, workers int, st *store.Store) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	e := engine(workers, st)
	specs := goldenSpecs()
	e.Sweep(specs) //nolint:errcheck // failures surface as error records below
	enc := json.NewEncoder(f)
	var errs []error
	for _, s := range specs {
		rec := e.Record(s)
		rec.HostNanos = e.HostRunNanos(s)
		if rec.Error != "" {
			errs = append(errs, errors.New(rec.Error))
		}
		if werr := enc.Encode(rec); werr != nil {
			f.Close()
			return werr
		}
	}
	if err := f.Close(); err != nil {
		return err
	}
	return errors.Join(errs...)
}

// load reads a trajectory file into records indexed by spec key,
// validating every line against the sweep schema.
func load(path string) (map[string]exp.Record, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	recs := map[string]exp.Record{}
	line := 0
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		rec, err := exp.ValidateLine(sc.Bytes())
		if err != nil {
			return nil, fmt.Errorf("%s:%d: %v", path, line, err)
		}
		recs[rec.Key()] = rec
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return recs, nil
}

// gateRun re-runs the golden set — locally, or across the fabric when
// worker addresses are given — and compares it to the committed
// trajectory, returning the number of drifted runs.
func gateRun(path string, tol float64, workers int, fabricAddrs string, st *store.Store) (int, error) {
	want, err := load(path)
	if err != nil {
		return 0, err
	}
	specs := goldenSpecs()
	fresh, err := freshRecords(specs, workers, fabricAddrs, st)
	if err != nil {
		return 0, err
	}
	drift := 0
	for i, s := range specs {
		got := fresh[i]
		if got.Error != "" {
			drift++
			fmt.Fprintf(os.Stderr, "benchtraj: %s: run failed: %s\n", s.Key(), got.Error)
			continue
		}
		w, ok := want[s.Key()]
		if !ok {
			drift++
			fmt.Fprintf(os.Stderr, "benchtraj: %s: missing from %s (regenerate with -out)\n", s.Key(), path)
			continue
		}
		drift += compare(w, got, tol)
	}
	return drift, nil
}

// freshRecords re-runs the golden set, in spec order. With fabric
// worker addresses the set runs through a fabric.Coordinator — the
// merged stream is byte-compatible with a local sweep, so the records
// parse identically; run failures travel as error records and drift
// the gate rather than aborting it.
func freshRecords(specs []exp.Spec, workers int, fabricAddrs string, st *store.Store) ([]exp.Record, error) {
	if fabricAddrs == "" {
		e := engine(workers, st)
		recs := make([]exp.Record, len(specs))
		for i, s := range specs {
			recs[i] = e.Record(s)
		}
		return recs, nil
	}
	c := &fabric.Coordinator{
		Workers: strings.Split(fabricAddrs, ","),
		Speedup: true,
		Observe: true,
		Engine:  engine(workers, st),
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "benchtraj: "+format+"\n", args...)
		},
	}
	var buf bytes.Buffer
	if _, err := c.Run(&buf, specs); err != nil {
		// Joined run failures are already error records in the stream;
		// they drift the gate below. Anything else is a real abort.
		if buf.Len() == 0 {
			return nil, err
		}
	}
	var recs []exp.Record
	for _, line := range bytes.Split(bytes.TrimSpace(buf.Bytes()), []byte("\n")) {
		rec, err := exp.ValidateLine(line)
		if err != nil {
			return nil, fmt.Errorf("fabric stream: %v", err)
		}
		recs = append(recs, rec)
	}
	if len(recs) != len(specs) {
		return nil, fmt.Errorf("fabric stream has %d records for %d golden specs", len(recs), len(specs))
	}
	return recs, nil
}

// diffFiles compares two trajectory files over the keys of the old one.
func diffFiles(oldPath, newPath string, tol float64) (int, error) {
	oldRecs, err := load(oldPath)
	if err != nil {
		return 0, err
	}
	newRecs, err := load(newPath)
	if err != nil {
		return 0, err
	}
	drift := 0
	for key, w := range oldRecs {
		g, ok := newRecs[key]
		if !ok {
			// A reshaped golden set is an intentional renumbering, not
			// drift: report it but compare only the shared keys.
			fmt.Fprintf(os.Stderr, "benchtraj: %s: only in %s\n", key, oldPath)
			continue
		}
		drift += compare(w, g, tol)
	}
	return drift, nil
}

// compare reports one run's drift (0 or 1) between a committed record
// and a fresh one, printing every disagreeing field.
func compare(want, got exp.Record, tol float64) int {
	bad := 0
	complain := func(field string, w, g any) {
		if bad == 0 {
			fmt.Fprintf(os.Stderr, "benchtraj: %s drifted:\n", want.Key())
		}
		bad++
		fmt.Fprintf(os.Stderr, "  %-14s %v -> %v\n", field, w, g)
	}
	if !within(want.TimeNanos, got.TimeNanos, tol) {
		complain("time_ns", want.TimeNanos, got.TimeNanos)
	}
	if want.Msgs != got.Msgs {
		complain("msgs", want.Msgs, got.Msgs)
	}
	if want.Bytes != got.Bytes {
		complain("bytes", want.Bytes, got.Bytes)
	}
	if want.Checksum != got.Checksum {
		complain("checksum", want.Checksum, got.Checksum)
	}
	if !within(want.SeqNanos, got.SeqNanos, tol) {
		complain("seq_ns", want.SeqNanos, got.SeqNanos)
	}
	if !within(want.QueueNanos, got.QueueNanos, tol) {
		complain("queue_ns", want.QueueNanos, got.QueueNanos)
	}
	if want.Migrations != got.Migrations {
		complain("migrations", want.Migrations, got.Migrations)
	}
	bdPairs := [][2]int64{
		{want.BDTotalNanos, got.BDTotalNanos},
		{want.BDComputeNanos, got.BDComputeNanos},
		{want.BDFaultNanos, got.BDFaultNanos},
		{want.BDBarrierNanos, got.BDBarrierNanos},
		{want.BDLockNanos, got.BDLockNanos},
		{want.BDDataNanos, got.BDDataNanos},
		{want.BDQueueNanos, got.BDQueueNanos},
		{want.BDOtherNanos, got.BDOtherNanos},
	}
	bdNames := []string{"bd_total_ns", "bd_compute_ns", "bd_fault_ns", "bd_barrier_ns",
		"bd_lock_ns", "bd_data_ns", "bd_queue_ns", "bd_other_ns"}
	for i, p := range bdPairs {
		if !within(p[0], p[1], tol) {
			complain(bdNames[i], p[0], p[1])
		}
	}
	if bad > 0 {
		return 1
	}
	return 0
}

// within compares virtual-time fields under the relative tolerance.
func within(w, g int64, tol float64) bool {
	if w == g {
		return true
	}
	if tol <= 0 {
		return false
	}
	return math.Abs(float64(g-w)) <= tol*math.Abs(float64(w))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
