// Command sweeplint validates a JSON-lines sweep stream (the output of
// `dsmrun -sweep ...`) against the internal/exp record schema: every
// line must parse strictly (unknown fields rejected), carry a coherent
// spec, and keep its measurements internally consistent (queue splits
// covering totals, time_seconds agreeing with time_ns, finite
// checksums). Records whose "error" field is set count as run failures.
//
// Usage:
//
//	dsmrun -scale small -sweep "procs=1,2 protocol=lrc,hlrc" | sweeplint [-n expected] [-speedup]
//
// With -speedup every non-seq, non-error record must additionally carry
// the sequential-baseline join fields (seq_ns/seq_seconds/speedup, as
// emitted by `dsmrun -sweep ... -speedup`); their internal consistency
// is part of the schema and checked always.
//
// With -require-schema every record must carry a schema_version field
// matching this build's (a mismatched stamp always fails validation;
// the flag additionally rejects records with no stamp at all). This is
// the sweep fabric's wire format — workers stamp every streamed record
// so coordinators from a different build reject the stream instead of
// silently merging it; CI pipes a worker's raw /run stream through
// `sweeplint -require-schema`. Merged fabric output is unstamped, like
// any local sweep.
//
// Exit status: 0 when every record validates and none carries an error
// (and the count matches -n, if given); 1 otherwise. CI's sweep smoke
// job pipes a tiny cross-product through it.
//
// Trace mode:
//
//	dsmrun ... -trace out.json && sweeplint -trace < out.json
//
// -trace switches the input schema from JSON-lines sweep records to one
// Chrome trace_event JSON document (the output of `dsmrun -trace`):
// a traceEvents array whose entries carry a name and phase, pid/tid/ts
// on every non-metadata event and a non-negative dur on complete
// events. CI's trace smoke step pipes a 4-node run's trace through it.
//
// Store mode:
//
//	sweeplint -store results/
//
// -store DIR audits a persistent result store (the directory dsmrun,
// sweepd, experiments and benchtraj take as -store) instead of stdin:
// every live entry's frame CRC is re-verified, its value re-validated
// against the record schema (no wire stamp, no host time, no error, no
// join fields — the exact invariants the engine enforces before
// serving), and its key checked against the record's spec. Dead bytes
// from corrupt or superseded frames and schema-mismatched entries are
// reported; any corrupt frame or invalid value exits 1. A store that
// healed itself (corruption detected, entry recomputed and compacted
// away) lints clean.
//
// Metrics mode:
//
//	curl -s http://localhost:9090/metrics | sweeplint -metrics
//
// -metrics validates a Prometheus text-format (0.0.4) document instead
// (the output of `dsmrun -metrics-addr`'s /metrics endpoint): every
// sample must belong to a family declared by a preceding # TYPE line,
// series must be unique, counters non-negative, and histograms must
// carry ascending cumulative buckets ending at le="+Inf" with a
// matching _sum and _count. CI's sweep smoke job scrapes a live sweep
// and pipes the scrape through it. -n checks the sample count.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/exp"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/store"
)

func main() {
	expected := flag.Int("n", -1, "expected record count (-1: any)")
	speedup := flag.Bool("speedup", false, "require the seq-baseline join fields on every non-seq record")
	requireSchema := flag.Bool("require-schema", false, "require this build's schema_version stamp on every record (fabric wire streams)")
	trace := flag.Bool("trace", false, "validate a Chrome trace_event JSON document instead of sweep records")
	metricsText := flag.Bool("metrics", false, "validate a Prometheus text-format scrape instead of sweep records")
	storeDir := flag.String("store", "", "audit this persistent result store directory instead of reading stdin")
	flag.Parse()

	if *storeDir != "" {
		if err := lintStore(*storeDir, *expected); err != nil {
			fmt.Fprintf(os.Stderr, "sweeplint: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *metricsText {
		samples, err := metrics.ValidateText(os.Stdin)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sweeplint: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("sweeplint: valid metrics scrape, %d samples\n", samples)
		if *expected >= 0 && samples != *expected {
			fmt.Fprintf(os.Stderr, "sweeplint: got %d samples, want %d\n", samples, *expected)
			os.Exit(1)
		}
		return
	}

	if *trace {
		events, err := obs.ValidateChrome(os.Stdin)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sweeplint: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("sweeplint: valid trace, %d events\n", events)
		if *expected >= 0 && events != *expected {
			fmt.Fprintf(os.Stderr, "sweeplint: got %d events, want %d\n", events, *expected)
			os.Exit(1)
		}
		return
	}

	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	records, failures, invalid := 0, 0, 0
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		records++
		rec, err := exp.ValidateLine(line)
		if err != nil {
			invalid++
			fmt.Fprintf(os.Stderr, "sweeplint: record %d: %v\n", records, err)
			continue
		}
		// The stamp check comes before the error check: fabric workers
		// stamp error records too.
		if *requireSchema && rec.SchemaVersion != exp.SchemaVersion {
			invalid++
			fmt.Fprintf(os.Stderr, "sweeplint: record %d (%s): schema_version %d, want %d (-require-schema)\n",
				records, rec.Key(), rec.SchemaVersion, exp.SchemaVersion)
		}
		if rec.Error != "" {
			failures++
			fmt.Fprintf(os.Stderr, "sweeplint: record %d (%s): run failed: %s\n", records, rec.Key(), rec.Error)
			continue
		}
		if *speedup && rec.Version != core.Seq && rec.Speedup == 0 {
			invalid++
			fmt.Fprintf(os.Stderr, "sweeplint: record %d (%s): missing seq-baseline join (-speedup)\n", records, rec.Key())
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "sweeplint: read: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("sweeplint: %d records, %d invalid, %d failed runs\n", records, invalid, failures)
	if invalid > 0 || failures > 0 {
		os.Exit(1)
	}
	if *expected >= 0 && records != *expected {
		fmt.Fprintf(os.Stderr, "sweeplint: got %d records, want %d\n", records, *expected)
		os.Exit(1)
	}
}

// lintStore audits a persistent result store: frame CRCs, record
// schema, the serve-side invariants, and key/record agreement.
func lintStore(dir string, expected int) error {
	st, err := store.Open(dir, exp.StoreOptions(0))
	if err != nil {
		return err
	}
	defer st.Close()
	rep, err := st.Verify(func(key string, value []byte) error {
		err := checkStoredRecord(key, value)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sweeplint: store entry %q: %v\n", key, err)
		}
		return err
	})
	if err != nil {
		return err
	}
	fmt.Printf("sweeplint: store %s: %d records, %d bytes, %d corrupt frames, %d schema-mismatched, %d invalid values\n",
		dir, rep.Entries, rep.Bytes, rep.CorruptFrames, rep.SchemaSkips, rep.BadValues)
	if rep.CorruptFrames > 0 || rep.BadValues > 0 {
		return fmt.Errorf("store has %d corrupt frames and %d invalid values", rep.CorruptFrames, rep.BadValues)
	}
	if expected >= 0 && rep.Entries != expected {
		return fmt.Errorf("got %d records, want %d", rep.Entries, expected)
	}
	return nil
}

// checkStoredRecord enforces what the engine guarantees before serving
// a stored entry: a strictly-valid record carrying no wire stamp, host
// time, error, or baseline join, under the key its spec derives.
func checkStoredRecord(key string, value []byte) error {
	rec, err := exp.ValidateLine(value)
	if err != nil {
		return err
	}
	switch {
	case rec.SchemaVersion != 0:
		return fmt.Errorf("carries wire stamp %d", rec.SchemaVersion)
	case rec.Error != "":
		return fmt.Errorf("carries a run error: %s", rec.Error)
	case rec.HostNanos != 0:
		return fmt.Errorf("carries host time")
	case rec.SeqNanos != 0 || rec.SeqSeconds != 0 || rec.Speedup != 0:
		return fmt.Errorf("carries a speedup join")
	case rec.Key() != strings.TrimSuffix(key, exp.StoreObserveSuffix):
		return fmt.Errorf("keyed for spec %s", rec.Key())
	}
	return nil
}
