// Command dsmrun executes one (application, version, processors) run and
// prints its timed-region metrics: virtual time, speedup over the
// sequential baseline, message count, and data volume.
//
// Usage:
//
//	dsmrun -app Jacobi -version tmk [-procs 8] [-scale mid]
//
// Versions: seq, spf, tmk, xhpf, pvme, spf-opt, tmk-opt, spf-old
// (availability varies by application; see -list).
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/harness"
)

func main() {
	app := flag.String("app", "Jacobi", "application name (see -list)")
	version := flag.String("version", "tmk", "version to run")
	procs := flag.Int("procs", 8, "number of simulated processors")
	scale := flag.String("scale", "mid", "problem scale: paper, mid, or small")
	list := flag.Bool("list", false, "list applications and versions")
	flag.Parse()

	if *list {
		for _, a := range harness.Apps() {
			fmt.Printf("%-9s versions:", a.Name())
			for _, v := range a.Versions() {
				fmt.Printf(" %s", v)
			}
			fmt.Println()
		}
		return
	}
	a, err := harness.AppByName(*app)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	r := harness.NewRunner(*procs, harness.Scale(*scale))
	res, err := r.Run(a, core.Version(*version))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("app=%s version=%s procs=%d scale=%s\n", res.App, res.Version, res.Procs, *scale)
	fmt.Printf("time      = %v\n", res.Time)
	fmt.Printf("messages  = %d\n", res.Stats.TotalMsgs())
	fmt.Printf("data      = %d KB\n", res.Stats.TotalKB())
	fmt.Printf("checksum  = %g\n", res.Checksum)
	fmt.Printf("breakdown = %s\n", res.Stats.String())
	if res.FaultTime+res.SyncTime+res.WriteTime > 0 {
		fmt.Printf("overheads = fault %v, sync %v, write-detect %v (summed over %d procs)\n",
			res.FaultTime, res.SyncTime, res.WriteTime, res.Procs)
	}
	if *version != "seq" {
		seq, err := r.Run(a, core.Seq)
		if err == nil {
			fmt.Printf("speedup   = %.2f (seq %v)\n", res.Speedup(seq.Time), seq.Time)
		}
	}
}
