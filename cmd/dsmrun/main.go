// Command dsmrun executes one (application, version, processors) run and
// prints its timed-region metrics: virtual time, speedup over the
// sequential baseline, message count, and data volume.
//
// Usage:
//
//	dsmrun -app Jacobi -version tmk [-procs 8] [-scale mid] [-protocol lrc|hlrc]
//
// Versions: seq, spf, tmk, xhpf, pvme, spf-opt, tmk-opt, spf-old
// (availability varies by application; see -list). The -protocol flag
// selects the DSM coherence protocol for the shared-memory versions:
// lrc (homeless TreadMarks LRC, the paper's protocol and the default)
// or hlrc (home-based LRC).
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/proto"
)

func main() {
	app := flag.String("app", "Jacobi", "application name (see -list)")
	version := flag.String("version", "tmk", "version to run")
	procs := flag.Int("procs", 8, "number of simulated processors")
	scale := flag.String("scale", "mid", "problem scale: paper, mid, or small")
	protocol := flag.String("protocol", "", "DSM coherence protocol: lrc (default) or hlrc")
	list := flag.Bool("list", false, "list applications and versions")
	flag.Parse()

	if *list {
		for _, a := range harness.Apps() {
			fmt.Printf("%-9s versions:", a.Name())
			for _, v := range a.Versions() {
				fmt.Printf(" %s", v)
			}
			fmt.Println()
		}
		return
	}
	a, err := harness.AppByName(*app)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	pname, err := proto.Parse(*protocol)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	r := harness.NewRunner(*procs, harness.Scale(*scale))
	r.Protocol = pname
	res, err := r.Run(a, core.Version(*version))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("app=%s version=%s procs=%d scale=%s", res.App, res.Version, res.Procs, *scale)
	if res.Protocol != "" {
		fmt.Printf(" protocol=%s", res.Protocol)
	}
	fmt.Println()
	fmt.Printf("time      = %v\n", res.Time)
	fmt.Printf("messages  = %d\n", res.Stats.TotalMsgs())
	fmt.Printf("data      = %d KB\n", res.Stats.TotalKB())
	fmt.Printf("checksum  = %g\n", res.Checksum)
	fmt.Printf("breakdown = %s\n", res.Stats.String())
	if res.FaultTime+res.SyncTime+res.WriteTime > 0 {
		fmt.Printf("overheads = fault %v, sync %v, write-detect %v (summed over %d procs)\n",
			res.FaultTime, res.SyncTime, res.WriteTime, res.Procs)
	}
	if *version != "seq" {
		seq, err := r.Run(a, core.Seq)
		if err == nil {
			fmt.Printf("speedup   = %.2f (seq %v)\n", res.Speedup(seq.Time), seq.Time)
		}
	}
}
