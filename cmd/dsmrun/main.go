// Command dsmrun executes one (application, version, processors) run and
// prints its timed-region metrics: virtual time, speedup over the
// sequential baseline, message count, and data volume.
//
// Usage:
//
//	dsmrun -app Jacobi -version tmk [-procs 8] [-scale mid] [-protocol lrc|hlrc] [-contention N] [-json]
//
// Versions: seq, spf, tmk, xhpf, pvme, spf-opt, tmk-opt, spf-old,
// spf-gen, xhpf-gen (availability varies by application; see -list).
// The -protocol flag selects the DSM coherence protocol for the
// shared-memory versions: lrc (homeless TreadMarks LRC, the paper's
// protocol and the default) or hlrc (home-based LRC). The spf-gen and
// xhpf-gen versions are compiled from the kernel's loop-nest IR by the
// internal/loopc front end instead of being hand-written.
//
// -contention enables the network-contention model: N > 0 serializes
// each node's NIC and bounds the switch backplane to N concurrent
// full-rate transfers, -1 serializes the NICs over an ideal backplane,
// 0 (default) keeps the infinite-capacity interconnect. Contended runs
// additionally report the queueing delay messages spent waiting for
// busy links.
//
// With -json the result is emitted as a single JSON object (time,
// speedup, messages, bytes, checksum, queueing delay) for scripted
// benchmarking.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/proto"
)

// jsonResult is the machine-readable run record emitted by -json.
type jsonResult struct {
	App          string  `json:"app"`
	Version      string  `json:"version"`
	Procs        int     `json:"procs"`
	Scale        string  `json:"scale"`
	Protocol     string  `json:"protocol,omitempty"`
	Contention   int     `json:"contention,omitempty"`
	TimeSeconds  float64 `json:"time_seconds"`
	Msgs         int64   `json:"msgs"`
	Bytes        int64   `json:"bytes"`
	Checksum     float64 `json:"checksum"`
	QueueSeconds float64 `json:"queue_seconds,omitempty"`
	QueuedMsgs   int64   `json:"queued_msgs,omitempty"`
	SeqSeconds   float64 `json:"seq_seconds,omitempty"`
	Speedup      float64 `json:"speedup,omitempty"`
}

func main() {
	app := flag.String("app", "Jacobi", "application name (see -list)")
	version := flag.String("version", "tmk", "version to run")
	procs := flag.Int("procs", 8, "number of simulated processors")
	scale := flag.String("scale", "mid", "problem scale: paper, mid, or small")
	protocol := flag.String("protocol", "", "DSM coherence protocol: lrc (default) or hlrc")
	contention := flag.Int("contention", 0, "network contention: 0 off, -1 serial NICs only, N>0 serial NICs + N-way backplane")
	asJSON := flag.Bool("json", false, "emit the run result as one JSON object")
	list := flag.Bool("list", false, "list applications and versions")
	flag.Parse()

	if *list {
		for _, a := range harness.AllApps() {
			fmt.Printf("%-9s versions:", a.Name())
			for _, v := range a.Versions() {
				fmt.Printf(" %s", v)
			}
			fmt.Println()
		}
		return
	}
	a, err := harness.AppByName(*app)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	pname, err := proto.Parse(*protocol)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	r := harness.NewRunner(*procs, harness.Scale(*scale))
	r.Protocol = pname
	if *contention < -1 {
		fmt.Fprintf(os.Stderr, "dsmrun: invalid -contention %d (want 0, -1, or a positive backplane bound)\n", *contention)
		os.Exit(2)
	}
	r.Costs = r.Costs.WithContention(*contention)
	res, err := r.Run(a, core.Version(*version))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	var seq core.Result
	haveSeq := false
	if *version != "seq" {
		if seq, err = r.Run(a, core.Seq); err == nil {
			haveSeq = true
		}
	}

	if *asJSON {
		out := jsonResult{
			App: res.App, Version: string(res.Version), Procs: res.Procs,
			Scale: *scale, Protocol: string(res.Protocol),
			Contention:   *contention,
			TimeSeconds:  res.Time.Seconds(),
			Msgs:         res.Stats.TotalMsgs(),
			Bytes:        res.Stats.TotalBytes(),
			Checksum:     res.Checksum,
			QueueSeconds: res.QueueTime().Seconds(),
			QueuedMsgs:   res.Stats.TotalQueuedMsgs(),
		}
		if haveSeq {
			out.SeqSeconds = seq.Time.Seconds()
			out.Speedup = res.Speedup(seq.Time)
		}
		enc := json.NewEncoder(os.Stdout)
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	fmt.Printf("app=%s version=%s procs=%d scale=%s", res.App, res.Version, res.Procs, *scale)
	if res.Protocol != "" {
		fmt.Printf(" protocol=%s", res.Protocol)
	}
	fmt.Println()
	fmt.Printf("time      = %v\n", res.Time)
	fmt.Printf("messages  = %d\n", res.Stats.TotalMsgs())
	fmt.Printf("data      = %d KB\n", res.Stats.TotalKB())
	fmt.Printf("checksum  = %g\n", res.Checksum)
	fmt.Printf("breakdown = %s\n", res.Stats.String())
	if *contention != 0 {
		fmt.Printf("queueing  = %v over %d delayed messages\n", res.QueueTime(), res.Stats.TotalQueuedMsgs())
	}
	if res.FaultTime+res.SyncTime+res.WriteTime > 0 {
		fmt.Printf("overheads = fault %v, sync %v, write-detect %v (summed over %d procs)\n",
			res.FaultTime, res.SyncTime, res.WriteTime, res.Procs)
	}
	if haveSeq {
		fmt.Printf("speedup   = %.2f (seq %v)\n", res.Speedup(seq.Time), seq.Time)
	}
}
