// Command dsmrun executes one (application, version, processors) run and
// prints its timed-region metrics: virtual time, speedup over the
// sequential baseline, message count, and data volume.
//
// Usage:
//
//	dsmrun -app Jacobi -version tmk [-procs 8] [-scale mid] [-protocol lrc|hlrc] [-json]
//
// Versions: seq, spf, tmk, xhpf, pvme, spf-opt, tmk-opt, spf-old,
// spf-gen, xhpf-gen (availability varies by application; see -list).
// The -protocol flag selects the DSM coherence protocol for the
// shared-memory versions: lrc (homeless TreadMarks LRC, the paper's
// protocol and the default) or hlrc (home-based LRC). The spf-gen and
// xhpf-gen versions are compiled from the kernel's loop-nest IR by the
// internal/loopc front end instead of being hand-written.
//
// With -json the result is emitted as a single JSON object (time,
// speedup, messages, bytes, checksum) for scripted benchmarking.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/proto"
)

// jsonResult is the machine-readable run record emitted by -json.
type jsonResult struct {
	App         string  `json:"app"`
	Version     string  `json:"version"`
	Procs       int     `json:"procs"`
	Scale       string  `json:"scale"`
	Protocol    string  `json:"protocol,omitempty"`
	TimeSeconds float64 `json:"time_seconds"`
	Msgs        int64   `json:"msgs"`
	Bytes       int64   `json:"bytes"`
	Checksum    float64 `json:"checksum"`
	SeqSeconds  float64 `json:"seq_seconds,omitempty"`
	Speedup     float64 `json:"speedup,omitempty"`
}

func main() {
	app := flag.String("app", "Jacobi", "application name (see -list)")
	version := flag.String("version", "tmk", "version to run")
	procs := flag.Int("procs", 8, "number of simulated processors")
	scale := flag.String("scale", "mid", "problem scale: paper, mid, or small")
	protocol := flag.String("protocol", "", "DSM coherence protocol: lrc (default) or hlrc")
	asJSON := flag.Bool("json", false, "emit the run result as one JSON object")
	list := flag.Bool("list", false, "list applications and versions")
	flag.Parse()

	if *list {
		for _, a := range harness.AllApps() {
			fmt.Printf("%-9s versions:", a.Name())
			for _, v := range a.Versions() {
				fmt.Printf(" %s", v)
			}
			fmt.Println()
		}
		return
	}
	a, err := harness.AppByName(*app)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	pname, err := proto.Parse(*protocol)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	r := harness.NewRunner(*procs, harness.Scale(*scale))
	r.Protocol = pname
	res, err := r.Run(a, core.Version(*version))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	var seq core.Result
	haveSeq := false
	if *version != "seq" {
		if seq, err = r.Run(a, core.Seq); err == nil {
			haveSeq = true
		}
	}

	if *asJSON {
		out := jsonResult{
			App: res.App, Version: string(res.Version), Procs: res.Procs,
			Scale: *scale, Protocol: string(res.Protocol),
			TimeSeconds: res.Time.Seconds(),
			Msgs:        res.Stats.TotalMsgs(),
			Bytes:       res.Stats.TotalBytes(),
			Checksum:    res.Checksum,
		}
		if haveSeq {
			out.SeqSeconds = seq.Time.Seconds()
			out.Speedup = res.Speedup(seq.Time)
		}
		enc := json.NewEncoder(os.Stdout)
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	fmt.Printf("app=%s version=%s procs=%d scale=%s", res.App, res.Version, res.Procs, *scale)
	if res.Protocol != "" {
		fmt.Printf(" protocol=%s", res.Protocol)
	}
	fmt.Println()
	fmt.Printf("time      = %v\n", res.Time)
	fmt.Printf("messages  = %d\n", res.Stats.TotalMsgs())
	fmt.Printf("data      = %d KB\n", res.Stats.TotalKB())
	fmt.Printf("checksum  = %g\n", res.Checksum)
	fmt.Printf("breakdown = %s\n", res.Stats.String())
	if res.FaultTime+res.SyncTime+res.WriteTime > 0 {
		fmt.Printf("overheads = fault %v, sync %v, write-detect %v (summed over %d procs)\n",
			res.FaultTime, res.SyncTime, res.WriteTime, res.Procs)
	}
	if haveSeq {
		fmt.Printf("speedup   = %.2f (seq %v)\n", res.Speedup(seq.Time), seq.Time)
	}
}
