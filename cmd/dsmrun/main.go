// Command dsmrun is the thin CLI over the internal/exp measurement
// engine. It executes a single (application, version, processors) run —
// or a whole declarative sweep — and reports timed-region metrics:
// virtual time, speedup over the sequential baseline, message count,
// and data volume.
//
// Single run:
//
//	dsmrun -app Jacobi -version tmk [-procs 8] [-scale mid] [-protocol lrc|hlrc] [-homepolicy static|firsttouch|adaptive] [-contention N] [-fifo] [-json]
//
// Versions: seq, spf, tmk, xhpf, pvme, spf-opt, tmk-opt, spf-old,
// spf-gen, xhpf-gen (availability varies by application; see -list).
// The -protocol flag selects the DSM coherence protocol for the
// shared-memory versions: lrc (homeless TreadMarks LRC, the paper's
// protocol and the default) or hlrc (home-based LRC). The spf-gen and
// xhpf-gen versions are compiled from the kernel's loop-nest IR by the
// internal/loopc front end instead of being hand-written.
//
// -homepolicy selects hlrc's home-placement policy: static (block-wise
// fixed homes, the default), firsttouch (a page's home moves to its
// first faulting writer), or adaptive (a page's home migrates to the
// writer dominating its flush traffic, with hysteresis). Migrating runs
// additionally report home migrations and stale-home NACK activity.
//
// -contention enables the network-contention model: N > 0 serializes
// each node's NIC and bounds the switch backplane to N concurrent
// full-rate transfers, -1 serializes the NICs over an ideal backplane,
// 0 (default) keeps the infinite-capacity interconnect. Contended runs
// additionally report the queueing delay messages spent waiting for
// busy links, split by the binding resource (out link / in link /
// backplane). -fifo opts in to non-overtaking delivery within each
// (src, dst) pair, as the real PVMe/MPL transports guaranteed.
//
// With -json the result is emitted as a single JSON object (time,
// speedup, messages, bytes, checksum, queueing delay) for scripted
// benchmarking.
//
// Observability (single run):
//
//	dsmrun -app MGS -version tmk -protocol hlrc -trace out.json -breakdown
//
// -trace FILE records the run's event trace (page faults, diff and page
// traffic, barrier and lock synchronization, home migrations, NIC and
// backplane queueing) and writes it as Chrome trace_event JSON, which
// opens directly in Perfetto (ui.perfetto.dev) or chrome://tracing:
// timeline processes are physical nodes, threads are the application
// and request-server processes. -breakdown prints the per-node
// virtual-time attribution of the timed region — compute, page-fault
// stall, barrier wait, lock wait, message wait, contention queueing —
// whose components sum exactly to each node's timed window. In sweep
// mode -breakdown instead adds the summed bd_* fields to every record.
// Observability never changes virtual times, message counts or byte
// volumes: a traced run is bit-identical to an untraced one.
//
// -cpuprofile FILE and -memprofile FILE write runtime/pprof profiles of
// the simulator itself (host CPU and heap, not virtual time), for
// profiling the simulator's own performance on large sweeps.
// -blockprofile FILE and -mutexprofile FILE likewise write goroutine
// blocking and mutex contention profiles; the corresponding runtime
// sampling rates are enabled only when the flags are given.
//
// Persistent result store:
//
//	dsmrun -scale small -sweep "procs=1,2,4,8" -store results/ [-store-max-bytes 1073741824]
//
// -store DIR opens (creating if needed) a disk-backed record store
// shared across runs, processes and the sweep fabric: sweep specs whose
// exact record is already on disk are served without executing — the
// output bytes are identical to a cold run — and every executed record
// is written back. Entries are keyed by the spec key plus the record
// schema version, so a store written by a build with a different record
// shape reads as empty rather than serving stale bytes; torn or
// corrupted entries are detected (per-frame CRC), skipped and
// transparently recomputed. Concurrent access is safe within a process
// and across processes (advisory file lock); fabric workers pass the
// same flag to consult their local store before executing a leased
// range. -store-max-bytes bounds the directory, evicting
// least-recently-used records first (0: unbounded). With -metrics-addr
// or -metrics-dump the dsm_store_* families report hits, misses, puts,
// evictions, corrupt frames and resident bytes.
//
// Host telemetry:
//
//	dsmrun -scale mid -sweep "app=Jacobi procs=1,2,4,8" -metrics-addr :9090 -progress
//
// -metrics-addr serves live host-side telemetry over HTTP for the
// duration of the process: /metrics (Prometheus text format 0.0.4 —
// engine cache hit/miss/wait counters, in-flight and completed run
// gauges, worker busy/idle time, per-(app, version) host wall-time and
// allocation histograms, simulator dispatch/delivery totals),
// /debug/pprof/* (live profiling), and /progress (a JSON sweep
// progress snapshot). -progress prints a throttled progress line
// (done/total runs, cache hits, elapsed, ETA) to stderr. -metrics-dump
// FILE writes a final JSON snapshot of the registry at exit. All of it
// is host-side observability: virtual times, traffic, checksums and
// the sweep's JSON-lines bytes are identical with or without it.
//
// Differential testing:
//
//	dsmrun -gen 42        # one generated program, full differential lattice
//	dsmrun -gen 1:40      # forty programs starting at seed 1
//	dsmrun -genfile internal/loopc/testdata/failures/gen-30-min.json
//
// -gen seed[:count] generates deterministic loopc programs (see
// internal/loopc/gen) and runs each through the full differential
// lattice — the sequential interpreter plus spf-gen under both
// protocols and every home policy and xhpf-gen, at 1-8 processors —
// checking every run bitwise against the partition-aware oracle and for
// repeat determinism. -genfile does the same for one program spec read
// from a JSON file (for replaying a CI repro artifact). Divergent
// programs are delta-minimized and written to ./gen-failures/ as a
// corpus entry plus a report with a committable Go literal; the exit
// status is non-zero. Generated programs also run standalone:
// -app gen-<seed> works anywhere an application name does.
//
// Sweep mode:
//
//	dsmrun -sweep "procs=1,2,4,8 protocol=lrc,hlrc" [-workers N]
//	dsmrun -scale small -sweep app=Jacobi,RB-SOR version=tmk,xhpf procs=1,2
//	dsmrun -scale small -sweep "app=MGS procs=2,4,8 protocol=hlrc homepolicy=static,adaptive" -speedup
//
// -sweep expands the cross-product of axis values (axes: app, version,
// procs, scale, protocol, contention, fifo, homepolicy; remaining
// command-line arguments are parsed as additional axes) over the base
// flags, runs every point concurrently across host cores, and streams
// one JSON-lines record per point to stdout — in cross-product order,
// byte-identical regardless of -workers. -speedup joins every non-seq
// record with its sequential baseline (seq_ns/seq_seconds/speedup
// fields), so plots need no post-join. Run failures become records
// with an "error" field, a stderr summary ("sweep: N of M records
// failed") and a non-zero exit status.
//
// Distributed sweeps (the sweep fabric):
//
//	dsmrun -worker-listen :9190                 # serve as a fabric worker
//	dsmrun -sweep "..." -fabric host1:9190,host2:9190 [-fabric-range N] [-fabric-lease 2m]
//
// -fabric shards the sweep across worker daemons (dsmrun
// -worker-listen or sweepd) listed as comma-separated addresses: the
// coordinator splits the spec list into leased ranges, assigns them
// over HTTP, validates and re-merges the streamed records into spec
// order — the stdout bytes are identical to a local -sweep at any
// worker count. Leases have deadlines (-fabric-lease); expired,
// crashed, or malformed leases are retried and reassigned, stragglers
// are re-issued to idle workers (first valid result wins), and ranges
// the fleet cannot finish fall back to local execution, so an empty or
// fully-dead fleet degrades to a plain local sweep. Workers whose
// build has a different record schema version are rejected at
// registration. With -metrics-addr the /progress endpoint serves the
// aggregated fleet snapshot (per-worker leases, expiries, inflight,
// ETA) and /metrics adds the dsm_fabric_* families.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"repro/internal/core"
	"repro/internal/exp"
	"repro/internal/fabric"
	"repro/internal/harness"
	"repro/internal/loopc/difftest"
	"repro/internal/loopc/gen"
	"repro/internal/metrics"
	"repro/internal/proto"
	"repro/internal/stats"
	"repro/internal/store"
)

func main() {
	app := flag.String("app", "Jacobi", "application name (see -list)")
	version := flag.String("version", "tmk", "version to run")
	procs := flag.Int("procs", 8, "number of simulated processors")
	scale := flag.String("scale", "mid", "problem scale: paper, mid, or small")
	protocol := flag.String("protocol", "", "DSM coherence protocol: lrc (default) or hlrc")
	homepolicy := flag.String("homepolicy", "", "hlrc home-placement policy: static (default), firsttouch, or adaptive")
	contention := flag.Int("contention", 0, "network contention: 0 off, -1 serial NICs only, N>0 serial NICs + N-way backplane")
	fifo := flag.Bool("fifo", false, "non-overtaking delivery within each (src, dst) pair")
	asJSON := flag.Bool("json", false, "emit the run result as one JSON object")
	speedup := flag.Bool("speedup", false, "join sweep records with their sequential baselines (seq_ns/speedup fields)")
	sweep := flag.String("sweep", "", `sweep axes, e.g. "procs=1,2,4,8 protocol=lrc,hlrc" (emits JSON-lines)`)
	workers := flag.Int("workers", 0, "sweep worker pool size (0: all host cores)")
	fabricAddrs := flag.String("fabric", "", "comma-separated fabric worker addresses: shard -sweep across them (merged output stays byte-identical)")
	fabricRange := flag.Int("fabric-range", 0, "specs per fabric lease (0: 4)")
	fabricLease := flag.Duration("fabric-lease", 0, "fabric lease deadline before reassignment (0: 2m)")
	workerListen := flag.String("worker-listen", "", "serve as a fabric worker on this address (e.g. :9190) instead of running anything")
	trace := flag.String("trace", "", "write the run's event trace as Chrome trace_event JSON to this file (single run)")
	breakdown := flag.Bool("breakdown", false, "print the per-node time attribution (single run) or add bd_* fields (sweep)")
	cpuprofile := flag.String("cpuprofile", "", "write a host CPU profile of the simulator to this file")
	memprofile := flag.String("memprofile", "", "write a host heap profile of the simulator to this file")
	blockprofile := flag.String("blockprofile", "", "write a goroutine blocking profile to this file")
	mutexprofile := flag.String("mutexprofile", "", "write a mutex contention profile to this file")
	storeDir := flag.String("store", "", "persistent result store directory: records are served from disk across runs and processes (and written back)")
	storeMax := flag.Int64("store-max-bytes", 0, "evict the -store directory down to this many bytes, LRU first (0: unbounded)")
	metricsAddr := flag.String("metrics-addr", "", "serve /metrics, /debug/pprof/* and /progress on this address (e.g. :9090)")
	progress := flag.Bool("progress", false, "print a throttled sweep progress line to stderr")
	metricsDump := flag.String("metrics-dump", "", "write a final JSON snapshot of the metrics registry to this file")
	genSpec := flag.String("gen", "", `differential-test generated programs: "seed" or "seed:count"`)
	genFile := flag.String("genfile", "", "differential-test one program spec read from this JSON file")
	list := flag.Bool("list", false, "list applications and versions")
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			runtime.GC() // settle allocations so the profile reflects live heap
			if err := pprof.WriteHeapProfile(f); err != nil {
				fatal(err)
			}
		}()
	}
	// Block/mutex sampling costs the runtime something, so the rates are
	// raised only when the profiles were asked for.
	if *blockprofile != "" {
		runtime.SetBlockProfileRate(1)
		defer writeProfile("block", *blockprofile)
	}
	if *mutexprofile != "" {
		runtime.SetMutexProfileFraction(1)
		defer writeProfile("mutex", *mutexprofile)
	}

	// The persistent result store is shared by every mode that executes
	// runs: sweeps serve records straight from it, single runs and
	// fabric workers warm it. Every Put is synced frame by frame, so no
	// explicit flush is needed on the fatal-exit paths.
	var st *store.Store
	if *storeDir != "" {
		var err error
		if st, err = store.Open(*storeDir, exp.StoreOptions(*storeMax)); err != nil {
			fatal(err)
		}
		defer st.Close()
	}

	if *workerListen != "" {
		runWorker(*workerListen, *workers, st)
		return
	}
	if *genSpec != "" || *genFile != "" {
		if err := runGenDiff(*genSpec, *genFile); err != nil {
			fatal(err)
		}
		return
	}
	if *list {
		for _, a := range exp.Apps() {
			fmt.Printf("%-9s versions:", a.Name())
			for _, v := range a.Versions() {
				fmt.Printf(" %s", v)
			}
			fmt.Println()
		}
		return
	}
	pname, err := proto.Parse(*protocol)
	if err != nil {
		fatal(err)
	}
	// Unlike -protocol (resolved so output names what ran), an unset
	// -homepolicy stays empty: the field is omitted from keys and
	// records when empty, keeping pre-policy cache keys and cached
	// sweep streams valid.
	var polname proto.PolicyName
	if *homepolicy != "" {
		var err error
		if polname, err = proto.ParsePolicy(*homepolicy); err != nil {
			fatal(err)
		}
	}
	if *contention < -1 {
		fmt.Fprintf(os.Stderr, "dsmrun: invalid -contention %d (want 0, -1, or a positive backplane bound)\n", *contention)
		os.Exit(2)
	}
	base := exp.Spec{
		App:     *app,
		Version: core.Version(*version),
		Procs:   *procs,
		Scale:   core.Scale(*scale),
		// The single-run path resolves the protocol (empty -> lrc) so
		// its output names what actually ran; sweep axes do the same
		// through exp.ParseAxes.
		Protocol:   pname,
		Contention: *contention,
		FIFO:       *fifo,
		HomePolicy: polname,
	}
	eng := exp.New()
	eng.Workers = *workers
	eng.JoinSpeedup = *speedup
	eng.Observe = *trace != "" || *breakdown
	eng.Store = st
	if *metricsAddr != "" || *metricsDump != "" {
		eng.Metrics = metrics.NewRegistry()
	}
	// serveTelemetry starts the HTTP endpoint (if asked for) once the
	// progress aggregator exists; dumpMetrics writes the final JSON
	// snapshot (if asked for) and must run before exiting on error too.
	serveTelemetry := func(prog http.Handler) {
		if *metricsAddr == "" {
			return
		}
		extra := map[string]http.Handler{}
		if prog != nil {
			extra["/progress"] = prog
		}
		mux := metrics.NewMux(eng.Metrics, extra)
		_, addr, err := metrics.StartServer(*metricsAddr, mux)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "dsmrun: serving /metrics, /progress and /debug/pprof/ on http://%s\n", addr)
	}
	dumpMetrics := func() {
		if *metricsDump == "" {
			return
		}
		f, err := os.Create(*metricsDump)
		if err != nil {
			fatal(err)
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(eng.Metrics.Snapshot()); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
	}

	if *sweep != "" || flag.NArg() > 0 {
		if *trace != "" {
			fmt.Fprintln(os.Stderr, "dsmrun: -trace is a single-run flag (a sweep has no single timeline)")
			os.Exit(2)
		}
		tokens := append(strings.Fields(*sweep), flag.Args()...)
		axes, err := exp.ParseAxes(tokens)
		if err != nil {
			fatal(err)
		}
		specs := axes.Specs(base)
		for i := range specs {
			specs[i] = specs[i].Normalize()
		}
		var progOut io.Writer
		if *progress {
			progOut = os.Stderr
		}
		var stats exp.StreamStats
		if *fabricAddrs != "" {
			// Distributed sweep: shard the spec list across the fleet.
			// The merged stdout bytes are identical to the local path
			// below; failure accounting is shared (StreamStats either way).
			coord := &fabric.Coordinator{
				Workers:      strings.Split(*fabricAddrs, ","),
				RangeSize:    *fabricRange,
				LeaseTimeout: *fabricLease,
				Speedup:      *speedup,
				Observe:      eng.Observe,
				Engine:       eng,
				Metrics:      eng.Metrics,
				Out:          progOut,
				Logf: func(format string, args ...any) {
					fmt.Fprintf(os.Stderr, "dsmrun: "+format+"\n", args...)
				},
			}
			serveTelemetry(coord)
			stats, err = coord.Run(os.Stdout, specs)
		} else {
			prog := exp.NewProgress(exp.UniqueRuns(specs, *speedup), progOut, eng)
			eng.OnRunDone = prog.RunDone
			eng.OnStoreHit = prog.StoreHit
			serveTelemetry(prog)
			stats, err = eng.StreamWith(os.Stdout, specs, nil)
		}
		dumpMetrics()
		if stats.Failed > 0 {
			fmt.Fprintf(os.Stderr, "dsmrun: sweep: %d of %d records failed\n", stats.Failed, stats.Records)
		}
		if err != nil {
			fatal(err)
		}
		return
	}

	serveTelemetry(nil)
	defer dumpMetrics()
	res, err := eng.Run(base.Normalize())
	if err != nil {
		fatal(err)
	}
	if *trace != "" {
		f, err := os.Create(*trace)
		if err != nil {
			fatal(err)
		}
		if err := res.Trace.WriteChrome(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "dsmrun: wrote %d trace events to %s (open in ui.perfetto.dev)\n", res.Trace.Len(), *trace)
	}
	var seq core.Result
	haveSeq := false
	if base.Version != core.Seq {
		if seq, err = eng.Run(exp.SeqSpecOf(base)); err == nil {
			haveSeq = true
		}
	}

	if *asJSON {
		printJSON(base.Normalize(), res, seq, haveSeq)
		return
	}

	fmt.Printf("app=%s version=%s procs=%d scale=%s", res.App, res.Version, res.Procs, *scale)
	if res.Protocol != "" {
		fmt.Printf(" protocol=%s", res.Protocol)
	}
	if res.HomePolicy != "" && res.HomePolicy != proto.StaticPolicy {
		fmt.Printf(" homepolicy=%s", res.HomePolicy)
	}
	fmt.Println()
	fmt.Printf("time      = %v\n", res.Time)
	fmt.Printf("messages  = %d\n", res.Stats.TotalMsgs())
	fmt.Printf("data      = %d KB\n", res.Stats.TotalKB())
	fmt.Printf("checksum  = %g\n", res.Checksum)
	fmt.Printf("breakdown = %s\n", res.Stats.String())
	if *contention != 0 {
		fmt.Printf("queueing  = %v over %d delayed messages (out %v, in %v, backplane %v)\n",
			res.QueueTime(), res.Stats.TotalQueuedMsgs(),
			res.QueueTimeBy(stats.QueueOut), res.QueueTimeBy(stats.QueueIn), res.QueueTimeBy(stats.QueueBackplane))
	}
	if res.FaultTime+res.SyncTime+res.WriteTime > 0 {
		fmt.Printf("overheads = fault %v, sync %v, write-detect %v (summed over %d procs)\n",
			res.FaultTime, res.SyncTime, res.WriteTime, res.Procs)
	}
	if res.Migrations+res.StaleForwards+res.RedirectedFlushBytes > 0 {
		fmt.Printf("migration = %d home moves, %d stale-home NACKs, %d redirected flush bytes (whole run)\n",
			res.Migrations, res.StaleForwards, res.RedirectedFlushBytes)
	}
	if haveSeq {
		fmt.Printf("speedup   = %.2f (seq %v)\n", res.Speedup(seq.Time), seq.Time)
	}
	if *breakdown {
		fmt.Println()
		harness.BreakdownTable(os.Stdout, res)
	}
}

// printJSON emits the single-run record, joined with the sequential
// baseline when one was computable (the sweep schema plus
// seq_ns/seq_seconds/speedup).
func printJSON(s exp.Spec, res, seq core.Result, haveSeq bool) {
	rec := exp.RecordOf(s, res, nil)
	if haveSeq {
		rec.JoinSeq(seq)
	}
	if err := json.NewEncoder(os.Stdout).Encode(rec); err != nil {
		fatal(err)
	}
}

// runWorker is the -worker-listen mode: serve as a fabric worker until
// killed, with the full telemetry surface (/metrics, /debug/pprof/*)
// next to the fabric endpoints. cmd/sweepd is the same daemon plus
// CI's fault injection.
func runWorker(listen string, workers int, st *store.Store) {
	reg := metrics.NewRegistry()
	w := fabric.NewWorker(reg)
	w.Workers = workers
	w.Store = st
	w.Logf = func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "dsmrun: "+format+"\n", args...)
	}
	mux := metrics.NewMux(reg, w.Routes())
	_, addr, err := metrics.StartServer(listen, mux)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "dsmrun: fabric worker serving /healthz, /run, /progress and /metrics on http://%s\n", addr)
	select {} // serve until killed
}

// runGenDiff is the -gen/-genfile mode: run generated programs through
// the full differential lattice, minimizing and saving any divergence.
func runGenDiff(genSpec, genFile string) error {
	var specs []*gen.ProgramSpec
	switch {
	case genSpec != "" && genFile != "":
		return fmt.Errorf("dsmrun: -gen and -genfile are mutually exclusive")
	case genFile != "":
		data, err := os.ReadFile(genFile)
		if err != nil {
			return err
		}
		ps, err := gen.Parse(data)
		if err != nil {
			return fmt.Errorf("%s: %w", genFile, err)
		}
		specs = append(specs, ps)
	default:
		seedPart, countPart, hasCount := strings.Cut(genSpec, ":")
		var seed, count int64 = 0, 1
		if _, err := fmt.Sscanf(seedPart, "%d", &seed); err != nil || seed < 0 {
			return fmt.Errorf("dsmrun: invalid -gen %q (want seed or seed:count)", genSpec)
		}
		if hasCount {
			if _, err := fmt.Sscanf(countPart, "%d", &count); err != nil || count < 1 {
				return fmt.Errorf("dsmrun: invalid -gen %q (want seed or seed:count)", genSpec)
			}
		}
		for i := int64(0); i < count; i++ {
			specs = append(specs, gen.Generate(seed+i))
		}
	}

	opts := difftest.Options{}
	failed := 0
	for _, ps := range specs {
		if err := ps.Check(); err != nil {
			return err
		}
		divs, err := difftest.Check(ps, opts)
		if err != nil {
			return fmt.Errorf("%s: %w", ps.Name, err)
		}
		if len(divs) == 0 {
			fmt.Printf("%-8s ok (n=%d nests=%d iters=%d)\n", ps.Name, ps.N, len(ps.Nests), ps.Iters)
			continue
		}
		failed++
		for _, d := range divs {
			fmt.Printf("%s\n", d)
		}
		min := difftest.Minimize(ps, func(c *gen.ProgramSpec) bool {
			d, err := difftest.Check(c, difftest.Options{Repeats: 1})
			return err == nil && len(d) > 0
		})
		minDivs, _ := difftest.Check(min, difftest.Options{Repeats: 1})
		path, err := difftest.WriteRepro("gen-failures", min, minDivs)
		if err != nil {
			return err
		}
		fmt.Printf("%-8s DIVERGED — minimized repro written to %s\n", ps.Name, path)
	}
	if failed > 0 {
		return fmt.Errorf("dsmrun: %d of %d generated programs diverged", failed, len(specs))
	}
	return nil
}

// writeProfile dumps a named runtime profile (block, mutex) to path.
func writeProfile(name, path string) {
	f, err := os.Create(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	if err := pprof.Lookup(name).WriteTo(f, 0); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
